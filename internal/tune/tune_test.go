package tune

import (
	"bytes"
	"strings"
	"testing"

	"sara/internal/arch"
	"sara/internal/core"
	"sara/internal/sim"
	"sara/internal/workloads"
)

// testSpace is a small grid that exercises every interesting path: a par
// sweep (front members), a DRAM-channel cut (dominance pruning on the
// memory-bound side), and an opt ablation (byte-identical designs sharing
// one measurement).
func testSpace() Space {
	return Space{
		Pars:         []int{4, 8, 16},
		Opts:         []OptSet{NamedOptSets[0], NamedOptSets[5]},
		DRAMChannels: []int{8, 16},
	}
}

func testOptions() Options {
	return Options{Workload: "ms", Scale: 16, Space: testSpace()}
}

func runOrFatal(t *testing.T, o Options) *Result {
	t.Helper()
	r, err := Run(o)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

// TestSearchDeterministicAcrossWorkers is the tentpole's bit-identity
// claim: the same seed produces byte-identical stripped results at any
// worker count.
func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 2, 7} {
		o := testOptions()
		o.Workers = workers
		r := runOrFatal(t, o)
		var buf bytes.Buffer
		if err := r.StripTimings().WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Errorf("workers=%d produced different stripped JSON than workers=1", workers)
		}
	}
}

// TestSearchMatchesBruteForce verifies the pruning rule end to end: exhaustive
// cycle-engine validation of every candidate must find the same best cycle
// count the pruned search reports, and every pruned point's true cycles must
// be no better than the point that pruned it.
func TestSearchMatchesBruteForce(t *testing.T) {
	o := testOptions()
	r := runOrFatal(t, o)
	if r.Stats.PrunedDominated == 0 {
		t.Fatal("test space should exercise dominance pruning")
	}
	if r.Stats.SharedSims == 0 {
		t.Fatal("test space should exercise design-identity sharing")
	}
	w, err := workloads.ByName(o.Workload)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := o.Space.points(w.DefaultPar)
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force ground truth.
	truth := make(map[int]int64, len(pts))
	for _, p := range pts {
		spec, err := p.Spec(arch.SARA20x20())
		if err != nil {
			t.Fatalf("point %d: %v", p.ID, err)
		}
		c, err := core.Compile(w.Build(workloads.Params{Par: p.Par, Scale: o.Scale}),
			core.Config{Spec: spec, Opt: p.Opt.Opts, SkipPlace: true})
		if err != nil {
			continue
		}
		res := c.Resources()
		if res.PCU > spec.NumPCU || res.PMU > spec.NumPMU || res.AG > spec.NumAG {
			continue
		}
		sr, err := sim.CycleEngine(c.Design(), 50_000_000, sim.EngineEvent)
		if err != nil {
			continue
		}
		truth[p.ID] = sr.Cycles
	}
	best := r.Best()
	if best == nil {
		t.Fatal("search validated nothing")
	}
	var bruteBest int64 = -1
	for _, cy := range truth {
		if bruteBest < 0 || cy < bruteBest {
			bruteBest = cy
		}
	}
	if best.Cycles != bruteBest {
		t.Errorf("search best %d cycles, brute force found %d — pruning discarded the optimum", best.Cycles, bruteBest)
	}
	for i := range r.Points {
		p := &r.Points[i]
		if p.Status == StatusValidated {
			if cy, ok := truth[p.Point.ID]; !ok || cy != p.Cycles {
				t.Errorf("point %d: search cycles %d, brute force %d", p.Point.ID, p.Cycles, cy)
			}
		}
		if p.Status != StatusPruned {
			continue
		}
		cy, ok := truth[p.Point.ID]
		if !ok {
			continue
		}
		var prunerCycles int64
		var prunerTotal int
		if p.PrunedBy == -2 {
			prunerCycles, prunerTotal = r.Baseline.Cycles, r.Baseline.Total
		} else {
			pruner := &r.Points[p.PrunedBy]
			prunerCycles, prunerTotal = pruner.Cycles, pruner.Total
		}
		if prunerTotal > p.Total || prunerCycles > cy {
			t.Errorf("point %d (%s) pruned unsoundly: true cycles %d, pruner has total=%d cycles=%d (point total=%d)",
				p.Point.ID, p.Point.Label(), cy, prunerTotal, prunerCycles, p.Total)
		}
	}
}

// TestCeilingGuardFailsLoudly: an unsound slack must abort the search with
// an actionable error instead of producing a silently wrong front.
func TestCeilingGuardFailsLoudly(t *testing.T) {
	o := testOptions()
	o.Slack = 0.01
	_, err := Run(o)
	if err == nil || !strings.Contains(err.Error(), "ceiling") {
		t.Fatalf("slack far below the true ratio should trip the runtime guard, got err=%v", err)
	}
}

// TestFrontIsSortedStaircase checks the deterministic-output satellite: the
// front is sorted by (total, cycles, ID) and strictly improves cycles.
func TestFrontIsSortedStaircase(t *testing.T) {
	r := runOrFatal(t, testOptions())
	if len(r.Front) == 0 {
		t.Fatal("empty front")
	}
	for k := 1; k < len(r.Front); k++ {
		a, b := &r.Points[r.Front[k-1]], &r.Points[r.Front[k]]
		if b.Total < a.Total || (b.Total == a.Total && r.Front[k] < r.Front[k-1]) {
			t.Errorf("front not sorted at %d: (%d,%d) then (%d,%d)", k, a.Total, a.Cycles, b.Total, b.Cycles)
		}
		if b.Cycles >= a.Cycles {
			t.Errorf("front not strictly improving at %d: %d then %d cycles", k, a.Cycles, b.Cycles)
		}
	}
	for _, id := range r.Front {
		if !r.Points[id].Pareto {
			t.Errorf("front member %d not marked Pareto", id)
		}
	}
	// Every validated non-front point must be dominated by a front point.
	for i := range r.Points {
		p := &r.Points[i]
		if p.Status != StatusValidated || p.Pareto {
			continue
		}
		dominated := false
		for _, id := range r.Front {
			f := &r.Points[id]
			if f.Total <= p.Total && f.Cycles <= p.Cycles {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Errorf("validated point %d is neither on the front nor dominated", i)
		}
	}
}

// TestBestAtBaseArchBeatsBaseline is the acceptance criterion: with the
// default par in the space, the front's best seed-arch point matches or
// beats the hand-picked baseline configuration.
func TestBestAtBaseArchBeatsBaseline(t *testing.T) {
	o := testOptions()
	// Include pars up to the baseline's own fitted factor so the comparison
	// is apples to apples even if every smaller par were slower; the
	// baseline-coincident point shares the baseline's measurement through
	// design-identity dedupe rather than re-simulating.
	o.Space.Pars = []int{16, 96}
	r := runOrFatal(t, o)
	base := r.BestAtBaseArch()
	if base == nil {
		t.Fatal("no validated point at the seed arch")
	}
	if base.Cycles > r.Baseline.Cycles {
		t.Errorf("best seed-arch point %d cycles, baseline %d — tuner should match or beat the hand-picked config",
			base.Cycles, r.Baseline.Cycles)
	}
}

func TestSpaceEnumeration(t *testing.T) {
	s := testSpace()
	if got := s.Size(); got != 12 {
		t.Fatalf("Size = %d, want 12", got)
	}
	pts, err := s.points(192)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 12 {
		t.Fatalf("points = %d, want 12", len(pts))
	}
	// Documented order: par outermost, then opts, then channels.
	if pts[0].Par != 4 || pts[0].Opt.Name != "all" || pts[0].DRAMChannels != 8 {
		t.Errorf("first point %+v breaks enumeration order", pts[0])
	}
	if pts[1].DRAMChannels != 16 || pts[2].Opt.Name != "none" {
		t.Errorf("inner axes out of order: %+v %+v", pts[1], pts[2])
	}
	for i, p := range pts {
		if p.ID != i {
			t.Fatalf("point %d has ID %d", i, p.ID)
		}
	}
	// Empty space: one default point.
	var empty Space
	pts, err = empty.points(192)
	if err != nil || len(pts) != 1 || pts[0].Par != 192 {
		t.Errorf("empty space should enumerate the single default point, got %v (%v)", pts, err)
	}
	// Bad axis values fail loudly.
	if _, err := (&Space{Pars: []int{0}}).points(192); err == nil {
		t.Error("zero par should be rejected")
	}
	if _, err := (&Space{Pars: []int{4}, NumPCU: []int{-1}}).points(192); err == nil {
		t.Error("negative axis value should be rejected")
	}
}

func TestMaxPointsCap(t *testing.T) {
	o := testOptions()
	o.MaxPoints = 4
	if _, err := Run(o); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("space over MaxPoints should be rejected, got %v", err)
	}
}

func TestParseOptSets(t *testing.T) {
	sets, err := ParseOptSets("all, no-xbar-elm")
	if err != nil || len(sets) != 2 || sets[1].Name != "no-xbar-elm" {
		t.Fatalf("ParseOptSets: %v %v", sets, err)
	}
	if sets[1].Opts.XbarElm || !sets[1].Opts.MSR {
		t.Errorf("no-xbar-elm should disable only XbarElm: %+v", sets[1].Opts)
	}
	if _, err := ParseOptSets("bogus"); err == nil {
		t.Error("unknown set should be rejected")
	}
	sets, err = ParseOptSets("")
	if err != nil || len(sets) != 1 || sets[0].Name != "all" {
		t.Errorf("empty list should default to all: %v %v", sets, err)
	}
}

// TestUnknownWorkloadRejected keeps service callers from burning a search on
// a typo.
func TestUnknownWorkloadRejected(t *testing.T) {
	if _, err := Run(Options{Workload: "nope"}); err == nil {
		t.Fatal("unknown workload should error")
	}
}
