// Package mip implements a 0-1 / integer branch-and-bound solver on top of
// the package lp simplex. It is the stand-in for the commercial MIP solver
// (Gurobi) the paper uses for solver-based compute partitioning and global
// merging (paper §III-B1d, §IV-B): it supports warm starts from the
// traversal-based heuristic, a relative optimality-gap stop (the paper uses
// 15%), and node/time limits.
//
// The solver minimizes. Branching picks the most fractional integer variable;
// node selection is best-first on the LP relaxation bound, which makes the
// reported bound a true global lower bound at every point.
package mip

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"

	"sara/internal/lp"
)

// Rel re-exports the constraint relations for callers.
type Rel = lp.Rel

// Constraint relations.
const (
	LE = lp.LE
	GE = lp.GE
	EQ = lp.EQ
)

// Problem is a mixed-integer program under construction. All variables are
// bounded below by zero; integer variables default to an upper bound of 1
// (binary) unless SetUpper raises it.
type Problem struct {
	n       int
	obj     []float64
	rowIdx  [][]int
	rowCoef [][]float64
	rowRel  []Rel
	rowRHS  []float64
	integer []bool
	upper   []float64
}

// NewProblem returns a MIP with n continuous non-negative variables.
func NewProblem(n int) *Problem {
	up := make([]float64, n)
	for i := range up {
		up[i] = math.Inf(1)
	}
	return &Problem{n: n, obj: make([]float64, n), integer: make([]bool, n), upper: up}
}

// NumVars returns the variable count.
func (p *Problem) NumVars() int { return p.n }

// SetObj sets the minimization objective coefficient of variable i.
func (p *Problem) SetObj(i int, v float64) { p.obj[i] = v }

// AddObj adds v to the objective coefficient of variable i.
func (p *Problem) AddObj(i int, v float64) { p.obj[i] += v }

// SetBinary marks variable i as 0-1.
func (p *Problem) SetBinary(i int) {
	p.integer[i] = true
	p.upper[i] = 1
}

// SetInteger marks variable i as integral (keeping its current bounds).
func (p *Problem) SetInteger(i int) { p.integer[i] = true }

// SetUpper bounds variable i above by v.
func (p *Problem) SetUpper(i int, v float64) { p.upper[i] = v }

// AddConstraint appends the sparse row Σ coef[k]·x[idx[k]] rel rhs.
func (p *Problem) AddConstraint(idx []int, coef []float64, rel Rel, rhs float64) {
	if len(idx) != len(coef) {
		panic("mip: index/coefficient length mismatch")
	}
	p.rowIdx = append(p.rowIdx, idx)
	p.rowCoef = append(p.rowCoef, coef)
	p.rowRel = append(p.rowRel, rel)
	p.rowRHS = append(p.rowRHS, rhs)
}

// Status reports how a solve ended.
type Status int

const (
	// Optimal: proven optimal (or within the requested gap).
	Optimal Status = iota
	// Feasible: a limit stopped the search with an incumbent in hand.
	Feasible
	// Infeasible: no integer-feasible point exists.
	Infeasible
	// Limit: a limit stopped the search with no incumbent.
	Limit
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Limit:
		return "limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Options tunes the search.
type Options struct {
	// Gap is the relative optimality gap at which to stop (0 = prove
	// optimality). The paper's methodology uses 0.15.
	Gap float64
	// MaxNodes caps explored branch-and-bound nodes (0 = 1e6).
	MaxNodes int
	// TimeLimit caps wall-clock search time (0 = none).
	TimeLimit time.Duration
	// WarmStart seeds the incumbent with a known feasible point (the
	// traversal-based partitioning solution in the paper). Ignored when
	// infeasible for the problem.
	WarmStart []float64
}

// Solution is a solve result.
type Solution struct {
	Status Status
	X      []float64
	Obj    float64
	// Bound is the proven global lower bound on the optimum.
	Bound float64
	// Gap is the final relative gap between Obj and Bound.
	Gap float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
}

// ErrInfeasible is returned when no integer-feasible point exists.
var ErrInfeasible = errors.New("mip: infeasible")

const intTol = 1e-6

type node struct {
	bound float64
	lo    map[int]float64
	hi    map[int]float64
}

type nodeHeap []*node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].bound < h[j].bound }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Solve runs best-first branch and bound.
func (p *Problem) Solve(opts Options) (*Solution, error) {
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 1_000_000
	}
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = time.Now().Add(opts.TimeLimit)
	}

	best := math.Inf(1)
	var bestX []float64
	if opts.WarmStart != nil && p.feasible(opts.WarmStart) {
		best = p.objValue(opts.WarmStart)
		bestX = append([]float64(nil), opts.WarmStart...)
	}

	h := &nodeHeap{{bound: math.Inf(-1), lo: map[int]float64{}, hi: map[int]float64{}}}
	heap.Init(h)
	nodes := 0
	rootBound := math.Inf(-1)
	haveRoot := false

	for h.Len() > 0 {
		if nodes >= opts.MaxNodes || (!deadline.IsZero() && time.Now().After(deadline)) {
			break
		}
		nd := heap.Pop(h).(*node)
		// Global bound: best-first means the popped node's bound is the
		// global lower bound among open nodes.
		globalBound := nd.bound
		if !haveRoot {
			globalBound = math.Inf(-1)
		}
		if bestX != nil && gapOK(best, globalBound, opts.Gap) {
			return p.finish(Optimal, bestX, best, globalBound, nodes), nil
		}
		if nd.bound >= best-1e-9 {
			continue // cannot improve
		}
		nodes++

		sol, err := p.solveRelaxation(nd)
		if err != nil {
			continue // infeasible subproblem
		}
		if !haveRoot {
			rootBound = sol.Obj
			haveRoot = true
		}
		if sol.Obj >= best-1e-9 {
			continue
		}
		branchVar := p.mostFractional(sol.X)
		if branchVar < 0 {
			// Integer feasible.
			if sol.Obj < best {
				best = sol.Obj
				bestX = roundInts(sol.X, p.integer)
			}
			continue
		}
		v := sol.X[branchVar]
		down := &node{bound: sol.Obj, lo: copyMap(nd.lo), hi: copyMap(nd.hi)}
		down.hi[branchVar] = math.Floor(v)
		up := &node{bound: sol.Obj, lo: copyMap(nd.lo), hi: copyMap(nd.hi)}
		up.lo[branchVar] = math.Ceil(v)
		heap.Push(h, down)
		heap.Push(h, up)
	}

	bound := rootBound
	if h.Len() > 0 {
		bound = (*h)[0].bound
	} else if bestX != nil {
		bound = best
	}
	if bestX == nil {
		if h.Len() == 0 && nodes > 0 {
			return p.finish(Infeasible, nil, math.Inf(1), bound, nodes), ErrInfeasible
		}
		return p.finish(Limit, nil, math.Inf(1), bound, nodes), errors.New("mip: limit reached without incumbent")
	}
	status := Feasible
	if h.Len() == 0 || gapOK(best, bound, opts.Gap) {
		status = Optimal
	}
	return p.finish(status, bestX, best, bound, nodes), nil
}

func (p *Problem) finish(st Status, x []float64, obj, bound float64, nodes int) *Solution {
	g := 0.0
	if x != nil {
		g = relGap(obj, bound)
	}
	return &Solution{Status: st, X: x, Obj: obj, Bound: bound, Gap: g, Nodes: nodes}
}

func gapOK(incumbent, bound, gap float64) bool {
	return relGap(incumbent, bound) <= gap+1e-12
}

func relGap(incumbent, bound float64) float64 {
	if math.IsInf(bound, -1) {
		return math.Inf(1)
	}
	d := incumbent - bound
	if d <= 0 {
		return 0
	}
	den := math.Max(math.Abs(incumbent), 1)
	return d / den
}

// solveRelaxation builds and solves the LP relaxation with the node's bounds.
func (p *Problem) solveRelaxation(nd *node) (*lp.Solution, error) {
	q := lp.NewProblem(p.n)
	for i, v := range p.obj {
		if v != 0 {
			q.SetObj(i, v)
		}
	}
	for r := range p.rowIdx {
		q.AddConstraint(p.rowIdx[r], p.rowCoef[r], p.rowRel[r], p.rowRHS[r])
	}
	for i := 0; i < p.n; i++ {
		hi := p.upper[i]
		if v, ok := nd.hi[i]; ok && v < hi {
			hi = v
		}
		if !math.IsInf(hi, 1) {
			q.AddConstraint([]int{i}, []float64{1}, lp.LE, hi)
		}
		if v, ok := nd.lo[i]; ok && v > 0 {
			q.AddConstraint([]int{i}, []float64{1}, lp.GE, v)
		}
	}
	return q.Solve()
}

// mostFractional returns the integer variable farthest from integrality, or
// -1 when the point is integer feasible.
func (p *Problem) mostFractional(x []float64) int {
	best, bestFrac := -1, intTol
	for i, isInt := range p.integer {
		if !isInt {
			continue
		}
		f := math.Abs(x[i] - math.Round(x[i]))
		if f > bestFrac {
			best, bestFrac = i, f
		}
	}
	return best
}

func roundInts(x []float64, integer []bool) []float64 {
	out := append([]float64(nil), x...)
	for i, isInt := range integer {
		if isInt {
			out[i] = math.Round(out[i])
		}
	}
	return out
}

func copyMap(m map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// feasible checks a candidate point against all rows, bounds, and
// integrality.
func (p *Problem) feasible(x []float64) bool {
	if len(x) != p.n {
		return false
	}
	for i, v := range x {
		if v < -intTol || v > p.upper[i]+intTol {
			return false
		}
		if p.integer[i] && math.Abs(v-math.Round(v)) > intTol {
			return false
		}
	}
	for r := range p.rowIdx {
		s := 0.0
		for k, idx := range p.rowIdx[r] {
			s += p.rowCoef[r][k] * x[idx]
		}
		switch p.rowRel[r] {
		case lp.LE:
			if s > p.rowRHS[r]+1e-6 {
				return false
			}
		case lp.GE:
			if s < p.rowRHS[r]-1e-6 {
				return false
			}
		case lp.EQ:
			if math.Abs(s-p.rowRHS[r]) > 1e-6 {
				return false
			}
		}
	}
	return true
}

func (p *Problem) objValue(x []float64) float64 {
	s := 0.0
	for i, v := range x {
		s += p.obj[i] * v
	}
	return s
}
