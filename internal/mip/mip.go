// Package mip implements a 0-1 / integer branch-and-bound solver on top of
// the package lp simplex. It is the stand-in for the commercial MIP solver
// (Gurobi) the paper uses for solver-based compute partitioning and global
// merging (paper §III-B1d, §IV-B): it supports warm starts from the
// traversal-based heuristic, a relative optimality-gap stop (the paper uses
// 15%), and node/time limits.
//
// The solver minimizes. Branching picks the most fractional integer variable;
// node selection is best-first on the LP relaxation bound, which makes the
// reported bound a true global lower bound at every point.
package mip

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"

	"sara/internal/lp"
)

// Rel re-exports the constraint relations for callers.
type Rel = lp.Rel

// Constraint relations.
const (
	LE = lp.LE
	GE = lp.GE
	EQ = lp.EQ
)

// Problem is a mixed-integer program under construction. All variables are
// bounded below by zero; integer variables default to an upper bound of 1
// (binary) unless SetUpper raises it.
type Problem struct {
	n       int
	obj     []float64
	rowIdx  [][]int
	rowCoef [][]float64
	rowRel  []Rel
	rowRHS  []float64
	integer []bool
	upper   []float64
}

// NewProblem returns a MIP with n continuous non-negative variables.
func NewProblem(n int) *Problem {
	up := make([]float64, n)
	for i := range up {
		up[i] = math.Inf(1)
	}
	return &Problem{n: n, obj: make([]float64, n), integer: make([]bool, n), upper: up}
}

// NumVars returns the variable count.
func (p *Problem) NumVars() int { return p.n }

// NumRows returns the constraint row count. Together with NumVars it
// identifies a formulation's LP shape for basis-seeding purposes
// (Options.SeedBasis): two problems with equal shape get structurally
// compatible root relaxations.
func (p *Problem) NumRows() int { return len(p.rowRHS) }

// SetObj sets the minimization objective coefficient of variable i.
func (p *Problem) SetObj(i int, v float64) { p.obj[i] = v }

// AddObj adds v to the objective coefficient of variable i.
func (p *Problem) AddObj(i int, v float64) { p.obj[i] += v }

// SetBinary marks variable i as 0-1.
func (p *Problem) SetBinary(i int) {
	p.integer[i] = true
	p.upper[i] = 1
}

// SetInteger marks variable i as integral (keeping its current bounds).
func (p *Problem) SetInteger(i int) { p.integer[i] = true }

// SetUpper bounds variable i above by v.
func (p *Problem) SetUpper(i int, v float64) { p.upper[i] = v }

// AddConstraint appends the sparse row Σ coef[k]·x[idx[k]] rel rhs.
func (p *Problem) AddConstraint(idx []int, coef []float64, rel Rel, rhs float64) {
	if len(idx) != len(coef) {
		panic("mip: index/coefficient length mismatch")
	}
	p.rowIdx = append(p.rowIdx, idx)
	p.rowCoef = append(p.rowCoef, coef)
	p.rowRel = append(p.rowRel, rel)
	p.rowRHS = append(p.rowRHS, rhs)
}

// Status reports how a solve ended.
type Status int

const (
	// Optimal: proven optimal (or within the requested gap).
	Optimal Status = iota
	// Feasible: a limit stopped the search with an incumbent in hand.
	Feasible
	// Infeasible: no integer-feasible point exists.
	Infeasible
	// Limit: a limit stopped the search with no incumbent.
	Limit
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Limit:
		return "limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Options tunes the search.
type Options struct {
	// Gap is the relative optimality gap at which to stop (0 = prove
	// optimality). The paper's methodology uses 0.15.
	Gap float64
	// MaxNodes caps explored branch-and-bound nodes (0 = 1e6).
	MaxNodes int
	// TimeLimit caps wall-clock search time (0 = none).
	TimeLimit time.Duration
	// WarmStart seeds the incumbent with a known feasible point (the
	// traversal-based partitioning solution in the paper). Ignored when
	// infeasible for the problem.
	WarmStart []float64
	// Workers selects the speculative LP worker count for the parallel tree
	// search: 0 = auto (GOMAXPROCS, capped at 8), 1 or negative = the serial
	// oracle, n > 1 = exactly n workers. Results are bit-identical across
	// all settings — the main loop runs the serial algorithm either way and
	// workers only pre-compute deterministic LP relaxations.
	Workers int
	// ColdLP disables warm-started relaxations: every node re-runs two-phase
	// simplex from an empty tableau. This is the pre-warm-start baseline,
	// kept selectable for benchmarking (cmd/sarabench).
	ColdLP bool
	// SeedBasis, when non-nil, seeds the ROOT node's LP relaxation with a
	// basis captured from a previously solved problem of the same shape
	// (incremental recompilation: the formulation delta between two compile
	// requests is often empty or tiny). The seed is only a hint:
	// lp.SolveFrom re-factorizes it against this problem's tableau and falls
	// back to a cold solve whenever it is singular or dual infeasible, so a
	// stale or foreign basis can never change the solution — only the pivot
	// count. Ignored under ColdLP, which bypasses bases entirely.
	SeedBasis lp.Basis
}

// Solution is a solve result.
type Solution struct {
	Status Status
	X      []float64
	Obj    float64
	// Bound is the proven global lower bound on the optimum.
	Bound float64
	// Gap is the final relative gap between Obj and Bound.
	Gap float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// WarmStarted counts explored nodes whose LP relaxation was seeded from
	// the parent's optimal basis (lp.SolveFrom) rather than solved cold.
	WarmStarted int
	// RootBasis is the optimal basis of the root LP relaxation (nil when the
	// root was solved cold or yielded no clean basis). Callers hand it to a
	// later Solve of a same-shaped problem via Options.SeedBasis.
	RootBasis lp.Basis
}

// ErrInfeasible is returned when no integer-feasible point exists.
var ErrInfeasible = errors.New("mip: infeasible")

const intTol = 1e-6

type node struct {
	// id is assigned in creation order and is the deterministic tie-break
	// for equal bounds: lowest ID wins, so the pop order — and with it the
	// whole search — is identical run to run and across worker counts.
	id    int64
	bound float64
	lo    map[int]float64
	hi    map[int]float64
	// loOrder lists the variables of lo in the order their lower-bound rows
	// were introduced along the branching path (shared read-only with the
	// parent unless this node added one). Lower-bound rows are emitted in
	// this order so a child's LP is the parent's LP plus at most one
	// trailing row — the shape lp.SolveFrom can warm-start across.
	loOrder []int
	// basis is the parent relaxation's optimal basis (shared, read-only);
	// nil at the root and below unrecoverable parents.
	basis lp.Basis
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	return h[i].id < h[j].id
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Solve runs best-first branch and bound. The node heap is ordered by
// (LP bound, node ID) — a total order — so the search is deterministic, and
// every LP relaxation is a pure function of its node; the parallel mode
// (Options.Workers) exploits that by speculatively pre-solving frontier
// relaxations on a worker pool while this loop stays the sole decision
// maker, making serial and parallel results bit-identical.
func (p *Problem) Solve(opts Options) (*Solution, error) {
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 1_000_000
	}
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = time.Now().Add(opts.TimeLimit)
	}

	best := math.Inf(1)
	var bestX []float64
	if opts.WarmStart != nil && p.feasible(opts.WarmStart) {
		best = p.objValue(opts.WarmStart)
		bestX = append([]float64(nil), opts.WarmStart...)
	}

	rx := newRelaxation(p, opts.ColdLP)
	var spec *speculator
	if w := workerCount(opts.Workers); w > 1 {
		spec = newSpeculator(rx, w)
		defer spec.stop()
		spec.noteIncumbent(best)
	}

	var seed lp.Basis
	if rx.warm && opts.SeedBasis != nil {
		seed = append(lp.Basis(nil), opts.SeedBasis...)
	}
	h := &nodeHeap{{id: 0, bound: math.Inf(-1), lo: map[int]float64{}, hi: map[int]float64{}, basis: seed}}
	heap.Init(h)
	nextID := int64(1)
	nodes, warmed := 0, 0
	rootBound := math.Inf(-1)
	haveRoot := false
	limited := false
	var rootBasis lp.Basis

	for h.Len() > 0 {
		if nodes >= opts.MaxNodes || (!deadline.IsZero() && time.Now().After(deadline)) {
			limited = true
			break
		}
		nd := heap.Pop(h).(*node)
		// Global bound: best-first means the popped node's bound is the
		// global lower bound among open nodes.
		globalBound := nd.bound
		if !haveRoot {
			globalBound = math.Inf(-1)
		}
		if bestX != nil && gapOK(best, globalBound, opts.Gap) {
			return p.finish(Optimal, bestX, best, globalBound, nodes, warmed).withRootBasis(rootBasis), nil
		}
		if nd.bound >= best-1e-9 {
			if spec != nil {
				spec.discard(nd)
			}
			continue // cannot improve
		}
		nodes++
		if nd.basis != nil {
			warmed++
		}

		var sol *lp.Solution
		var err error
		if spec != nil {
			sol, err = spec.get(nd)
		} else {
			sol, err = rx.solveNode(nd)
		}
		if err != nil {
			continue // infeasible subproblem
		}
		if !haveRoot {
			rootBound = sol.Obj
			haveRoot = true
			rootBasis = sol.Basis
		}
		if sol.Obj >= best-1e-9 {
			continue
		}
		branchVar := p.mostFractional(sol.X)
		if branchVar < 0 {
			// Integer feasible.
			if sol.Obj < best {
				best = sol.Obj
				bestX = roundInts(sol.X, p.integer)
				if spec != nil {
					spec.noteIncumbent(best)
				}
			}
			continue
		}
		v := sol.X[branchVar]
		childBasis := sol.Basis
		if !rx.warm {
			// Cold relaxations ignore the basis; don't hand it down (it would
			// also miscount WarmStarted).
			childBasis = nil
		}
		down := &node{id: nextID, bound: sol.Obj, lo: copyMap(nd.lo), hi: copyMap(nd.hi), loOrder: nd.loOrder, basis: childBasis}
		down.hi[branchVar] = math.Floor(v)
		up := &node{id: nextID + 1, bound: sol.Obj, lo: copyMap(nd.lo), hi: copyMap(nd.hi), loOrder: nd.loOrder, basis: childBasis}
		up.lo[branchVar] = math.Ceil(v)
		if _, had := nd.lo[branchVar]; !had {
			// First lower bound on this variable: its row is appended after
			// the parent's rows. Copy-on-append — the slice backing is shared
			// with the sibling and the parent.
			up.loOrder = append(append([]int(nil), nd.loOrder...), branchVar)
		}
		nextID += 2
		heap.Push(h, down)
		heap.Push(h, up)
		if spec != nil {
			spec.offer(down)
			spec.offer(up)
			spec.offerTop(h)
		}
	}

	bound := rootBound
	if h.Len() > 0 {
		bound = (*h)[0].bound
	} else if bestX != nil {
		bound = best
	}
	if bestX == nil {
		if h.Len() == 0 && nodes > 0 {
			return p.finish(Infeasible, nil, math.Inf(1), bound, nodes, warmed).withRootBasis(rootBasis), ErrInfeasible
		}
		return p.finish(Limit, nil, math.Inf(1), bound, nodes, warmed).withRootBasis(rootBasis), errors.New("mip: limit reached without incumbent")
	}
	// A limit-stopped search returns the incumbent as Feasible (best-effort)
	// unless the remaining open-node bound already proves it within the
	// requested gap; an exhausted heap is a full proof of optimality.
	status := Optimal
	if limited && !gapOK(best, bound, opts.Gap) {
		status = Feasible
	}
	return p.finish(status, bestX, best, bound, nodes, warmed).withRootBasis(rootBasis), nil
}

func (s *Solution) withRootBasis(b lp.Basis) *Solution {
	s.RootBasis = b
	return s
}

func (p *Problem) finish(st Status, x []float64, obj, bound float64, nodes, warmed int) *Solution {
	g := 0.0
	if x != nil {
		g = relGap(obj, bound)
	}
	return &Solution{Status: st, X: x, Obj: obj, Bound: bound, Gap: g, Nodes: nodes, WarmStarted: warmed}
}

func gapOK(incumbent, bound, gap float64) bool {
	return relGap(incumbent, bound) <= gap+1e-12
}

func relGap(incumbent, bound float64) float64 {
	if math.IsInf(bound, -1) {
		return math.Inf(1)
	}
	d := incumbent - bound
	if d <= 0 {
		return 0
	}
	den := math.Max(math.Abs(incumbent), 1)
	return d / den
}

// relaxation builds LP relaxations with a stable row layout so a parent's
// optimal basis transfers to its children. The shape at a node is
//
//	[original rows | x_i ≤ hi_i for every finite upper | -x_i ≤ -lo_i in
//	the order the branching path introduced them (node.loOrder)]
//
// A child therefore differs from its parent by a tightened right-hand side
// (down branch, or a repeated up branch) or by one appended trailing row
// (first up branch on a variable) — never by inserted, dropped, or
// reordered rows. Both deltas preserve the parent basis: the matrix and
// objective are unchanged over the parent's columns, so the basis stays
// dual feasible, and lp.SolveFrom extends it across the appended row with
// that row's slack. Crucially, lower-bound rows exist only where branching
// created them — emitting one for every integer variable up front would
// flood the tableau with degenerate zero-rhs rows and stall the dual
// simplex in zero-progress pivots.
type relaxation struct {
	p      *Problem
	warm   bool    // basis handoff enabled (stable row layout)
	ubVars []int   // variables with a finite upper bound, ascending
	oneIdx [][]int // oneIdx[i] == []int{i}, shared read-only across nodes
}

var (
	coefPos = []float64{1}
	coefNeg = []float64{-1}
)

func newRelaxation(p *Problem, cold bool) *relaxation {
	rx := &relaxation{p: p, warm: !cold}
	for i := 0; i < p.n; i++ {
		if p.integer[i] && math.IsInf(p.upper[i], 1) {
			// An unbounded integer variable would grow its bound rows lazily,
			// changing the row layout mid-tree; fall back to cold solves.
			rx.warm = false
		}
	}
	if !rx.warm {
		return rx
	}
	rx.oneIdx = make([][]int, p.n)
	for i := range rx.oneIdx {
		rx.oneIdx[i] = []int{i}
	}
	for i := 0; i < p.n; i++ {
		if !math.IsInf(p.upper[i], 1) {
			rx.ubVars = append(rx.ubVars, i)
		}
	}
	return rx
}

// solveNode solves the LP relaxation at nd. It is a pure function of the
// node and safe for concurrent use: all shared state is read-only.
func (rx *relaxation) solveNode(nd *node) (*lp.Solution, error) {
	p := rx.p
	q := lp.NewProblem(p.n)
	for i, v := range p.obj {
		if v != 0 {
			q.SetObj(i, v)
		}
	}
	for r := range p.rowIdx {
		q.AddConstraint(p.rowIdx[r], p.rowCoef[r], p.rowRel[r], p.rowRHS[r])
	}
	if !rx.warm {
		// Cold shape: bound rows appear only where they bind, exactly as the
		// pre-warm-start solver built them.
		for i := 0; i < p.n; i++ {
			hi := p.upper[i]
			if v, ok := nd.hi[i]; ok && v < hi {
				hi = v
			}
			if !math.IsInf(hi, 1) {
				q.AddConstraint([]int{i}, []float64{1}, lp.LE, hi)
			}
			if v, ok := nd.lo[i]; ok && v > 0 {
				q.AddConstraint([]int{i}, []float64{1}, lp.GE, v)
			}
		}
		return q.Solve()
	}
	for _, i := range rx.ubVars {
		hi := p.upper[i]
		if v, ok := nd.hi[i]; ok && v < hi {
			hi = v
		}
		q.AddConstraint(rx.oneIdx[i], coefPos, lp.LE, hi)
	}
	for _, i := range nd.loOrder {
		q.AddConstraint(rx.oneIdx[i], coefNeg, lp.LE, -nd.lo[i])
	}
	if nd.basis != nil {
		return q.SolveFrom(nd.basis)
	}
	return q.Solve()
}

// mostFractional returns the integer variable farthest from integrality, or
// -1 when the point is integer feasible.
func (p *Problem) mostFractional(x []float64) int {
	best, bestFrac := -1, intTol
	for i, isInt := range p.integer {
		if !isInt {
			continue
		}
		f := math.Abs(x[i] - math.Round(x[i]))
		if f > bestFrac {
			best, bestFrac = i, f
		}
	}
	return best
}

func roundInts(x []float64, integer []bool) []float64 {
	out := append([]float64(nil), x...)
	for i, isInt := range integer {
		if isInt {
			out[i] = math.Round(out[i])
		}
	}
	return out
}

func copyMap(m map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// feasible checks a candidate point against all rows, bounds, and
// integrality.
func (p *Problem) feasible(x []float64) bool {
	if len(x) != p.n {
		return false
	}
	for i, v := range x {
		if v < -intTol || v > p.upper[i]+intTol {
			return false
		}
		if p.integer[i] && math.Abs(v-math.Round(v)) > intTol {
			return false
		}
	}
	for r := range p.rowIdx {
		s := 0.0
		for k, idx := range p.rowIdx[r] {
			s += p.rowCoef[r][k] * x[idx]
		}
		switch p.rowRel[r] {
		case lp.LE:
			if s > p.rowRHS[r]+1e-6 {
				return false
			}
		case lp.GE:
			if s < p.rowRHS[r]-1e-6 {
				return false
			}
		case lp.EQ:
			if math.Abs(s-p.rowRHS[r]) > 1e-6 {
				return false
			}
		}
	}
	return true
}

func (p *Problem) objValue(x []float64) float64 {
	s := 0.0
	for i, v := range x {
		s += p.obj[i] * v
	}
	return s
}
