package mip

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// randomMIP generates a mixed random instance: binary variables under a
// knapsack row, plus occasional GE / EQ side constraints so the search
// exercises infeasible subproblems and non-trivial branching.
func randomMIP(rng *rand.Rand) *Problem {
	n := 6 + rng.Intn(10) // 6..15 binaries
	p := NewProblem(n)
	idx := make([]int, n)
	w := make([]float64, n)
	cap := 0.0
	for i := 0; i < n; i++ {
		p.SetObj(i, -(1 + rng.Float64()*9))
		p.SetBinary(i)
		idx[i] = i
		w[i] = 1 + rng.Float64()*5
		cap += w[i]
	}
	p.AddConstraint(idx, w, LE, cap*(0.3+rng.Float64()*0.3))
	if rng.Intn(2) == 0 {
		// Pick at least k of a random subset.
		k := 1 + rng.Intn(2)
		m := 3 + rng.Intn(n-3)
		sub := rng.Perm(n)[:m]
		coef := make([]float64, m)
		for i := range coef {
			coef[i] = 1
		}
		p.AddConstraint(sub, coef, GE, float64(k))
	}
	if rng.Intn(3) == 0 {
		// Exactly-one over a small subset.
		m := 2 + rng.Intn(3)
		sub := rng.Perm(n)[:m]
		coef := make([]float64, m)
		for i := range coef {
			coef[i] = 1
		}
		p.AddConstraint(sub, coef, EQ, 1)
	}
	return p
}

// sameSolution requires bit-identical results: status, objective, bound,
// gap, node count, warm-start count, and the full assignment vector.
func sameSolution(t *testing.T, label string, a, b *Solution) {
	t.Helper()
	if a.Status != b.Status {
		t.Errorf("%s: status %v vs %v", label, a.Status, b.Status)
	}
	if math.Float64bits(a.Obj) != math.Float64bits(b.Obj) {
		t.Errorf("%s: obj %v vs %v", label, a.Obj, b.Obj)
	}
	if math.Float64bits(a.Bound) != math.Float64bits(b.Bound) {
		t.Errorf("%s: bound %v vs %v", label, a.Bound, b.Bound)
	}
	if math.Float64bits(a.Gap) != math.Float64bits(b.Gap) {
		t.Errorf("%s: gap %v vs %v", label, a.Gap, b.Gap)
	}
	if a.Nodes != b.Nodes {
		t.Errorf("%s: nodes %d vs %d", label, a.Nodes, b.Nodes)
	}
	if a.WarmStarted != b.WarmStarted {
		t.Errorf("%s: warm-started %d vs %d", label, a.WarmStarted, b.WarmStarted)
	}
	if len(a.X) != len(b.X) {
		t.Fatalf("%s: |X| %d vs %d", label, len(a.X), len(b.X))
	}
	for i := range a.X {
		if math.Float64bits(a.X[i]) != math.Float64bits(b.X[i]) {
			t.Errorf("%s: X[%d] %v vs %v", label, i, a.X[i], b.X[i])
		}
	}
}

// TestSerialParallelEquivalenceRandom is the solver-level equivalence gate:
// on seeded random instances the parallel speculative search must reproduce
// the serial oracle bit for bit — same tree, same incumbent, same bound.
func TestSerialParallelEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 40; trial++ {
		p := randomMIP(rng)
		serial, errS := p.Solve(Options{Workers: 1})
		par, errP := p.Solve(Options{Workers: 8})
		if (errS == nil) != (errP == nil) {
			t.Fatalf("trial %d: serial err %v, parallel err %v", trial, errS, errP)
		}
		if errS != nil {
			if serial.Status != par.Status {
				t.Errorf("trial %d: error status %v vs %v", trial, serial.Status, par.Status)
			}
			continue
		}
		sameSolution(t, "trial", serial, par)
	}
}

// TestParallelDeterministicAcrossGOMAXPROCS pins determinism against the
// scheduler: the same instance solved with 8 workers under GOMAXPROCS=1 and
// under all cores must agree exactly with each other and with the serial
// oracle.
func TestParallelDeterministicAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		p := randomMIP(rng)
		serial, err := p.Solve(Options{Workers: 1})
		if err != nil {
			continue
		}
		prev := runtime.GOMAXPROCS(1)
		one, err1 := p.Solve(Options{Workers: 8})
		runtime.GOMAXPROCS(prev)
		many, errN := p.Solve(Options{Workers: 8})
		if err1 != nil || errN != nil {
			t.Fatalf("trial %d: gomaxprocs=1 err %v, many err %v", trial, err1, errN)
		}
		sameSolution(t, "gomaxprocs=1 vs serial", serial, one)
		sameSolution(t, "gomaxprocs=n vs serial", serial, many)
	}
}

// TestWarmVsColdObjective checks the warm-started LP path lands on the same
// optimum as the cold baseline (vertices may differ; objectives may not) and
// that warm starts actually engage on branching instances.
func TestWarmVsColdObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	engaged := false
	for trial := 0; trial < 25; trial++ {
		p := randomMIP(rng)
		warm, errW := p.Solve(Options{})
		cold, errC := p.Solve(Options{ColdLP: true})
		if (errW == nil) != (errC == nil) {
			t.Fatalf("trial %d: warm err %v, cold err %v", trial, errW, errC)
		}
		if errW != nil {
			continue
		}
		if math.Abs(warm.Obj-cold.Obj) > 1e-6 {
			t.Errorf("trial %d: warm obj %v != cold obj %v", trial, warm.Obj, cold.Obj)
		}
		if warm.WarmStarted > 0 {
			engaged = true
		}
		if cold.WarmStarted != 0 {
			t.Errorf("trial %d: cold path reports %d warm-started nodes", trial, cold.WarmStarted)
		}
	}
	if !engaged {
		t.Error("no instance engaged the warm-start path")
	}
}

// TestNodeCapReturnsFeasible checks the node-limit contract: a search
// truncated with an unproven incumbent reports Feasible, not Optimal, while
// the untruncated run proves Optimal on the same instance.
func TestNodeCapReturnsFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 18
	p := NewProblem(n)
	idx := make([]int, n)
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		p.SetObj(i, -(1 + rng.Float64()*9))
		p.SetBinary(i)
		idx[i] = i
		w[i] = 1 + rng.Float64()*4
	}
	p.AddConstraint(idx, w, LE, 18)

	full, err := p.Solve(Options{})
	if err != nil {
		t.Fatalf("full solve: %v", err)
	}
	if full.Status != Optimal {
		t.Fatalf("full solve status = %v, want optimal", full.Status)
	}
	if full.Nodes <= 3 {
		t.Skipf("instance too easy (%d nodes) to truncate meaningfully", full.Nodes)
	}

	start := make([]float64, n) // all-zero incumbent, far from optimal
	capped, err := p.Solve(Options{MaxNodes: 2, WarmStart: start})
	if err != nil {
		t.Fatalf("capped solve: %v", err)
	}
	if capped.Status != Feasible {
		t.Errorf("capped status = %v, want feasible (incumbent unproven)", capped.Status)
	}
	if capped.X == nil {
		t.Error("capped solve dropped the incumbent")
	}
	if capped.Nodes > 2 {
		t.Errorf("capped solve explored %d nodes, cap was 2", capped.Nodes)
	}

	// A cap that is never hit must not demote the status.
	roomy, err := p.Solve(Options{MaxNodes: full.Nodes + 10})
	if err != nil {
		t.Fatalf("roomy solve: %v", err)
	}
	if roomy.Status != Optimal {
		t.Errorf("roomy status = %v, want optimal", roomy.Status)
	}
}
