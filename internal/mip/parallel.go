// Parallel tree search via speculative LP relaxations.
//
// The branch-and-bound main loop stays the single decision maker — it pops,
// prunes, branches, and counts exactly as the serial solver does, following
// the (bound, node ID) total order. What parallel mode adds is a bounded
// worker pool that pre-solves the LP relaxations of frontier nodes the main
// loop is likely to pop next. Because every relaxation is a pure,
// deterministic function of its node, it does not matter who computes it or
// when: the search trajectory, the incumbent, and the final solution are
// bit-identical to the serial run for any worker count or GOMAXPROCS. A
// shared atomic incumbent bound lets workers skip nodes the main loop is
// guaranteed to prune, keeping speculation waste low.
package mip

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"sara/internal/lp"
)

// workerCount resolves Options.Workers: 1 or negative selects the serial
// oracle, 0 is auto (GOMAXPROCS capped at 8), larger values are taken as-is.
func workerCount(w int) int {
	if w < 0 {
		return 1
	}
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
		if w > 8 {
			w = 8
		}
	}
	return w
}

type specResult struct {
	done chan struct{}
	sol  *lp.Solution
	err  error
}

type speculator struct {
	rx    *relaxation
	queue chan *node
	wg    sync.WaitGroup
	// best holds math.Float64bits of the incumbent objective; written by the
	// main loop, read by workers to skip doomed speculation.
	best atomic.Uint64

	mu       sync.Mutex
	inflight map[int64]*specResult
	// dead marks node IDs the main loop has consumed or pruned; stale queue
	// entries for them are dropped instead of re-solved.
	dead map[int64]bool
}

func newSpeculator(rx *relaxation, workers int) *speculator {
	s := &speculator{
		rx:       rx,
		queue:    make(chan *node, 4*workers),
		inflight: make(map[int64]*specResult),
		dead:     make(map[int64]bool),
	}
	s.best.Store(math.Float64bits(math.Inf(1)))
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// stop drains the pool. Workers finish their current solve and exit.
func (s *speculator) stop() {
	close(s.queue)
	s.wg.Wait()
}

// noteIncumbent publishes a new incumbent objective to the workers.
func (s *speculator) noteIncumbent(best float64) {
	s.best.Store(math.Float64bits(best))
}

// offer queues a node for speculative solving, dropping it when the queue is
// full — speculation is best-effort, the main loop solves misses inline.
func (s *speculator) offer(nd *node) {
	select {
	case s.queue <- nd:
	default:
	}
}

// offerTop re-offers the leading heap entries. The heap array's prefix
// approximates the next pops, so this keeps workers pointed at the nodes the
// main loop will actually ask for.
func (s *speculator) offerTop(h *nodeHeap) {
	k := cap(s.queue) / 2
	for i := 0; i < len(*h) && i < k; i++ {
		s.offer((*h)[i])
	}
}

func (s *speculator) worker() {
	defer s.wg.Done()
	for nd := range s.queue {
		s.mu.Lock()
		if s.dead[nd.id] {
			s.mu.Unlock()
			continue
		}
		if _, claimed := s.inflight[nd.id]; claimed {
			s.mu.Unlock()
			continue
		}
		if nd.bound >= math.Float64frombits(s.best.Load())-1e-9 {
			// The main loop will prune this node without asking for its
			// relaxation. Leave it unclaimed: if the incumbent estimate was
			// stale the main loop simply solves it inline.
			s.mu.Unlock()
			continue
		}
		res := &specResult{done: make(chan struct{})}
		s.inflight[nd.id] = res
		s.mu.Unlock()
		res.sol, res.err = s.rx.solveNode(nd)
		close(res.done)
	}
}

// get returns nd's relaxation: it waits for an in-flight speculative solve
// or claims and solves inline on a miss. Called only by the main loop, at
// most once per node.
func (s *speculator) get(nd *node) (*lp.Solution, error) {
	s.mu.Lock()
	res, hit := s.inflight[nd.id]
	if !hit {
		res = &specResult{done: make(chan struct{})}
		s.inflight[nd.id] = res
		s.mu.Unlock()
		res.sol, res.err = s.rx.solveNode(nd)
		close(res.done)
	} else {
		s.mu.Unlock()
		<-res.done
	}
	s.mu.Lock()
	delete(s.inflight, nd.id)
	s.dead[nd.id] = true
	s.mu.Unlock()
	return res.sol, res.err
}

// discard tombstones a node the main loop pruned so stale queue entries are
// not solved and a finished speculative result can be collected.
func (s *speculator) discard(nd *node) {
	s.mu.Lock()
	delete(s.inflight, nd.id)
	s.dead[nd.id] = true
	s.mu.Unlock()
}
