package mip

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestKnapsack(t *testing.T) {
	// max 10a+6b+4c s.t. a+b+c<=2 (binary): best {a,b} = 16.
	p := NewProblem(3)
	vals := []float64{10, 6, 4}
	for i, v := range vals {
		p.SetObj(i, -v)
		p.SetBinary(i)
	}
	p.AddConstraint([]int{0, 1, 2}, []float64{1, 1, 1}, LE, 2)
	s, err := p.Solve(Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s.Status != Optimal || math.Abs(s.Obj+16) > 1e-6 {
		t.Fatalf("obj = %v (%v), want -16 optimal", s.Obj, s.Status)
	}
	if s.X[0] != 1 || s.X[1] != 1 || s.X[2] != 0 {
		t.Errorf("x = %v, want [1 1 0]", s.X)
	}
}

func TestIntegerRounding(t *testing.T) {
	// min x s.t. x >= 2.3, x integer -> 3.
	p := NewProblem(1)
	p.SetObj(0, 1)
	p.SetInteger(0)
	p.SetUpper(0, 10)
	p.AddConstraint([]int{0}, []float64{1}, GE, 2.3)
	s, err := p.Solve(Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s.X[0] != 3 {
		t.Errorf("x = %v, want 3", s.X[0])
	}
}

func TestInfeasibleMIP(t *testing.T) {
	// binary x with x >= 0.4 and x <= 0.6: LP feasible, IP infeasible.
	p := NewProblem(1)
	p.SetBinary(0)
	p.AddConstraint([]int{0}, []float64{1}, GE, 0.4)
	p.AddConstraint([]int{0}, []float64{1}, LE, 0.6)
	s, err := p.Solve(Options{})
	if err == nil || s.Status != Infeasible {
		t.Fatalf("want infeasible, got %v err=%v", s.Status, err)
	}
}

func TestWarmStartAccepted(t *testing.T) {
	p := NewProblem(2)
	p.SetObj(0, -3)
	p.SetObj(1, -2)
	p.SetBinary(0)
	p.SetBinary(1)
	p.AddConstraint([]int{0, 1}, []float64{1, 1}, LE, 1)
	// Warm start with the optimal point; node limit 1 still returns it.
	s, err := p.Solve(Options{WarmStart: []float64{1, 0}, MaxNodes: 1})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(s.Obj+3) > 1e-6 {
		t.Errorf("warm-started obj = %v, want -3", s.Obj)
	}
}

func TestWarmStartRejectedWhenInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.SetObj(0, 1)
	p.SetBinary(0)
	p.AddConstraint([]int{0}, []float64{1}, GE, 1)
	s, err := p.Solve(Options{WarmStart: []float64{0}}) // violates x >= 1
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s.X[0] != 1 {
		t.Errorf("x = %v, want 1 (warm start must be discarded)", s.X[0])
	}
}

func TestGapStopsEarly(t *testing.T) {
	// A problem where proving optimality needs branching, but a huge gap
	// accepts the first incumbent.
	rng := rand.New(rand.NewSource(3))
	n := 12
	p := NewProblem(n)
	idx := make([]int, n)
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		p.SetObj(i, -(1 + rng.Float64()*9))
		p.SetBinary(i)
		idx[i] = i
		w[i] = 1 + rng.Float64()*4
	}
	p.AddConstraint(idx, w, LE, 10)
	exact, err := p.Solve(Options{})
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	loose, err := p.Solve(Options{Gap: 0.5})
	if err != nil {
		t.Fatalf("loose: %v", err)
	}
	if loose.Nodes > exact.Nodes {
		t.Errorf("gap=0.5 explored %d nodes > exact %d", loose.Nodes, exact.Nodes)
	}
	if loose.Obj > exact.Obj*0.5+1e-6 {
		t.Errorf("gap solution %v not within 50%% of optimum %v", loose.Obj, exact.Obj)
	}
}

func TestTimeLimitReturnsIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 24
	p := NewProblem(n)
	idx := make([]int, n)
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		p.SetObj(i, -(1 + rng.Float64()*9))
		p.SetBinary(i)
		idx[i] = i
		w[i] = 1 + rng.Float64()*4
	}
	p.AddConstraint(idx, w, LE, 20)
	start := make([]float64, n) // all-zero is feasible
	s, err := p.Solve(Options{TimeLimit: time.Millisecond, WarmStart: start, MaxNodes: 5})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s.X == nil {
		t.Fatal("expected an incumbent from the warm start")
	}
}

// TestRandomKnapsacksAgainstBruteForce cross-checks B&B optima against
// exhaustive enumeration on random binary knapsacks.
func TestRandomKnapsacksAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(7) // 4..10 items
		vals := make([]float64, n)
		ws := make([]float64, n)
		idx := make([]int, n)
		cap := 0.0
		p := NewProblem(n)
		for i := 0; i < n; i++ {
			vals[i] = 1 + rng.Float64()*9
			ws[i] = 1 + rng.Float64()*5
			cap += ws[i]
			p.SetObj(i, -vals[i])
			p.SetBinary(i)
			idx[i] = i
		}
		cap *= 0.4
		p.AddConstraint(idx, ws, LE, cap)
		s, err := p.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Brute force.
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			wsum, vsum := 0.0, 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					wsum += ws[i]
					vsum += vals[i]
				}
			}
			if wsum <= cap && vsum > best {
				best = vsum
			}
		}
		if math.Abs(-s.Obj-best) > 1e-5 {
			t.Errorf("trial %d: B&B %v != brute force %v", trial, -s.Obj, best)
		}
	}
}

func TestEqualityPartitioning(t *testing.T) {
	// Assign 3 items to 2 bins, each item exactly one bin, bin capacity 2:
	// minimize "bin 1 used" indicator approximated by cost on bin-1 vars.
	// Variables: x[i][b] = i*2+b.
	p := NewProblem(6)
	for i := 0; i < 3; i++ {
		for b := 0; b < 2; b++ {
			v := i*2 + b
			p.SetBinary(v)
			if b == 1 {
				p.SetObj(v, 1)
			}
		}
		p.AddConstraint([]int{i * 2, i*2 + 1}, []float64{1, 1}, EQ, 1)
	}
	p.AddConstraint([]int{0, 2, 4}, []float64{1, 1, 1}, LE, 2)
	p.AddConstraint([]int{1, 3, 5}, []float64{1, 1, 1}, LE, 2)
	s, err := p.Solve(Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Two items fit in bin 0; one must pay for bin 1: obj = 1.
	if math.Abs(s.Obj-1) > 1e-6 {
		t.Errorf("obj = %v, want 1", s.Obj)
	}
}
