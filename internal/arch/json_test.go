package arch

import "testing"

func TestSpecJSONDefaults(t *testing.T) {
	s, err := (&SpecJSON{}).Spec()
	if err != nil {
		t.Fatalf("Spec: %v", err)
	}
	if s.Name != SARA20x20().Name {
		t.Errorf("empty request should yield the 20x20 preset, got %s", s.Name)
	}
	if s.DefaultStreamHops != 4 {
		t.Errorf("DefaultStreamHops = %d, want preset value 4", s.DefaultStreamHops)
	}
}

func TestSpecJSONOverrides(t *testing.T) {
	j := &SpecJSON{
		Preset:            "v1",
		ClockGHz:          1.4,
		DRAMChannels:      8,
		DefaultStreamHops: 7,
		NumPCU:            100,
	}
	s, err := j.Spec()
	if err != nil {
		t.Fatalf("Spec: %v", err)
	}
	if s.ClockGHz != 1.4 || s.DRAM.Channels != 8 || s.DefaultStreamHops != 7 || s.NumPCU != 100 {
		t.Errorf("overrides not applied: %+v", s)
	}
	if s.DRAM.Kind != DDR3 {
		t.Errorf("v1 preset should keep DDR3, got %s", s.DRAM.Kind)
	}
}

func TestSpecJSONScale(t *testing.T) {
	s, err := (&SpecJSON{Scale: 2}).Spec()
	if err != nil {
		t.Fatalf("Spec: %v", err)
	}
	base := SARA20x20()
	if s.NumPCU != 2*base.NumPCU || s.DRAM.Channels != 2*base.DRAM.Channels {
		t.Errorf("scale 2 not applied: %+v", s)
	}
}

func TestSpecJSONRejectsUnknownPreset(t *testing.T) {
	if _, err := (&SpecJSON{Preset: "40x40"}).Spec(); err == nil {
		t.Fatal("expected error for unknown preset")
	}
}
