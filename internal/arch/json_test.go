package arch

import (
	"strings"
	"testing"
)

func TestSpecJSONDefaults(t *testing.T) {
	s, err := (&SpecJSON{}).Spec()
	if err != nil {
		t.Fatalf("Spec: %v", err)
	}
	if s.Name != SARA20x20().Name {
		t.Errorf("empty request should yield the 20x20 preset, got %s", s.Name)
	}
	if s.DefaultStreamHops != 4 {
		t.Errorf("DefaultStreamHops = %d, want preset value 4", s.DefaultStreamHops)
	}
}

func TestSpecJSONOverrides(t *testing.T) {
	j := &SpecJSON{
		Preset:            "v1",
		ClockGHz:          1.4,
		DRAMChannels:      8,
		DefaultStreamHops: 7,
		NumPCU:            100,
	}
	s, err := j.Spec()
	if err != nil {
		t.Fatalf("Spec: %v", err)
	}
	if s.ClockGHz != 1.4 || s.DRAM.Channels != 8 || s.DefaultStreamHops != 7 || s.NumPCU != 100 {
		t.Errorf("overrides not applied: %+v", s)
	}
	if s.DRAM.Kind != DDR3 {
		t.Errorf("v1 preset should keep DDR3, got %s", s.DRAM.Kind)
	}
}

func TestSpecJSONScale(t *testing.T) {
	s, err := (&SpecJSON{Scale: 2}).Spec()
	if err != nil {
		t.Fatalf("Spec: %v", err)
	}
	base := SARA20x20()
	if s.NumPCU != 2*base.NumPCU || s.DRAM.Channels != 2*base.DRAM.Channels {
		t.Errorf("scale 2 not applied: %+v", s)
	}
}

func TestSpecJSONRejectsUnknownPreset(t *testing.T) {
	if _, err := (&SpecJSON{Preset: "40x40"}).Spec(); err == nil {
		t.Fatal("expected error for unknown preset")
	}
}

func TestSpecJSONTunerKnobs(t *testing.T) {
	j := &SpecJSON{Rows: 10, Cols: 12, StreamDepth: 8, NumAG: 24}
	s, err := j.Spec()
	if err != nil {
		t.Fatalf("Spec: %v", err)
	}
	if s.Rows != 10 || s.Cols != 12 {
		t.Errorf("grid override not applied: %dx%d", s.Rows, s.Cols)
	}
	if s.PCU.InBufDepth != 8 || s.PMU.InBufDepth != 8 || s.AG.InBufDepth != 8 {
		t.Errorf("stream_depth should set every unit type's InBufDepth: PCU %d PMU %d AG %d",
			s.PCU.InBufDepth, s.PMU.InBufDepth, s.AG.InBufDepth)
	}
	if s.NumAG != 24 {
		t.Errorf("num_ag override not applied: %d", s.NumAG)
	}
}

// TestSpecJSONRejectsBadKnobs is the satellite-1 contract: the tuner builds
// SpecJSON values programmatically, and any nonpositive unit count, grid
// dimension, or DRAM channel count must be rejected with an error naming the
// offending field — not silently simulated.
func TestSpecJSONRejectsBadKnobs(t *testing.T) {
	cases := []struct {
		name string
		j    SpecJSON
		want string // substring the error must carry
	}{
		{"negative num_pcu", SpecJSON{NumPCU: -1}, "num_pcu"},
		{"negative num_pmu", SpecJSON{NumPMU: -200}, "num_pmu"},
		{"negative num_ag", SpecJSON{NumAG: -3}, "num_ag"},
		{"negative rows", SpecJSON{Rows: -20}, "rows"},
		{"negative cols", SpecJSON{Cols: -20}, "cols"},
		{"negative dram_channels", SpecJSON{DRAMChannels: -16}, "dram_channels"},
		{"negative stream_depth", SpecJSON{StreamDepth: -16}, "stream_depth"},
		{"negative scale", SpecJSON{Scale: -2}, "scale"},
		{"negative clock", SpecJSON{ClockGHz: -1.0}, "clock_ghz"},
		{"negative hop latency", SpecJSON{NetHopLatencyCycles: -2}, "net_hop_latency_cycles"},
		{"negative stream hops", SpecJSON{DefaultStreamHops: -4}, "default_stream_hops"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.j.Spec()
			if err == nil {
				t.Fatalf("SpecJSON %+v should be rejected", tc.j)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q should name field %q", err, tc.want)
			}
		})
	}
}
