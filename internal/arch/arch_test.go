package arch

import "testing"

func TestSARA20x20MatchesPaper(t *testing.T) {
	s := SARA20x20()
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// §IV-a: 20×20 layout, 420 physical units, 1 TB/s HBM2.
	if s.Rows != 20 || s.Cols != 20 {
		t.Errorf("layout %dx%d, want 20x20", s.Rows, s.Cols)
	}
	if got := s.TotalPUs(); got != 420 {
		t.Errorf("total PUs = %d, want 420", got)
	}
	if got := s.DRAM.TotalGBs(s.ClockGHz); got != 1000 {
		t.Errorf("HBM2 bandwidth = %v GB/s, want 1000", got)
	}
	// Plasticine PCU: 16 lanes × 6 stages.
	if s.PCU.Lanes != 16 || s.PCU.Stages != 6 {
		t.Errorf("PCU %dx%d, want 16 lanes x 6 stages", s.PCU.Lanes, s.PCU.Stages)
	}
	// PMU: 256 KB of 32-bit words.
	if s.PMU.ScratchElems != 64*1024 {
		t.Errorf("PMU scratch = %d elems, want 65536", s.PMU.ScratchElems)
	}
}

func TestPlasticineV1MatchesOriginalPaper(t *testing.T) {
	s := PlasticineV1()
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// §IV-C: original config with 49 GB/s DDR3.
	if s.NumPCU != 64 || s.NumPMU != 64 {
		t.Errorf("PUs = %d/%d, want 64/64", s.NumPCU, s.NumPMU)
	}
	if got := s.DRAM.TotalGBs(s.ClockGHz); got != 49 {
		t.Errorf("DDR3 bandwidth = %v GB/s, want 49", got)
	}
	if s.DRAM.Kind != DDR3 {
		t.Errorf("DRAM kind = %v, want DDR3", s.DRAM.Kind)
	}
}

func TestScaledMultipliesResources(t *testing.T) {
	base := SARA20x20()
	s := base.Scaled(4)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.NumPCU != 4*base.NumPCU || s.DRAM.Channels != 4*base.DRAM.Channels {
		t.Errorf("Scaled(4) PCU=%d channels=%d", s.NumPCU, s.DRAM.Channels)
	}
	if s.AreaMM2 != 4*base.AreaMM2 {
		t.Errorf("area = %v, want 4x", s.AreaMM2)
	}
	// Base spec untouched.
	if base.NumPCU != 200 {
		t.Error("Scaled mutated the base spec")
	}
	if got := base.Scaled(0).NumPCU; got != base.NumPCU {
		t.Errorf("Scaled(0) should clamp to 1x, got %d PCUs", got)
	}
}

func TestValidateRejectsBroken(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"zero rows", func(s *Spec) { s.Rows = 0 }},
		{"negative cols", func(s *Spec) { s.Cols = -4 }},
		{"zero PCUs", func(s *Spec) { s.NumPCU = 0 }},
		{"zero PMUs", func(s *Spec) { s.NumPMU = 0 }},
		{"zero AGs", func(s *Spec) { s.NumAG = 0 }},
		{"negative AGs", func(s *Spec) { s.NumAG = -1 }},
		{"zero PCU lanes", func(s *Spec) { s.PCU.Lanes = 0 }},
		{"zero PCU in-buf depth", func(s *Spec) { s.PCU.InBufDepth = 0 }},
		{"zero PMU in-buf depth", func(s *Spec) { s.PMU.InBufDepth = 0 }},
		{"zero AG in-buf depth", func(s *Spec) { s.AG.InBufDepth = 0 }},
		{"zero PMU scratch", func(s *Spec) { s.PMU.ScratchElems = 0 }},
		{"zero DRAM channels", func(s *Spec) { s.DRAM.Channels = 0 }},
		{"negative DRAM channels", func(s *Spec) { s.DRAM.Channels = -16 }},
		{"zero DRAM bandwidth", func(s *Spec) { s.DRAM.BytesPerCyclePerChannel = 0 }},
		{"zero clock", func(s *Spec) { s.ClockGHz = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := SARA20x20()
			tc.mut(s)
			if err := s.Validate(); err == nil {
				t.Errorf("broken spec (%s) passed validation", tc.name)
			}
		})
	}
}

func TestPUSpecForCoversTypes(t *testing.T) {
	s := SARA20x20()
	if s.PUSpecFor(PCU).Type != PCU || s.PUSpecFor(PMU).Type != PMU || s.PUSpecFor(AG).Type != AG {
		t.Error("PUSpecFor returns wrong records")
	}
}
