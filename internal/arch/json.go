package arch

import "fmt"

// SpecJSON is the wire form of a chip configuration: a named preset, an
// optional generation-scaling factor, and optional field overrides. It is
// what the sarad serving API accepts as the "arch" member of a request, and
// its zero value means "the paper's default 20×20 HBM2 chip".
//
// Overrides with a zero value keep the preset's setting, so a request only
// states what it changes.
type SpecJSON struct {
	// Preset selects the base configuration: "20x20" (default) or "v1".
	Preset string `json:"preset,omitempty"`
	// Scale applies Spec.Scaled with the given factor (≥ 2 to take effect),
	// emulating larger chip generations.
	Scale int `json:"scale,omitempty"`

	ClockGHz            float64 `json:"clock_ghz,omitempty"`
	DRAMChannels        int     `json:"dram_channels,omitempty"`
	NetHopLatencyCycles int     `json:"net_hop_latency_cycles,omitempty"`
	DefaultStreamHops   int     `json:"default_stream_hops,omitempty"`
	NumPCU              int     `json:"num_pcu,omitempty"`
	NumPMU              int     `json:"num_pmu,omitempty"`
	NumAG               int     `json:"num_ag,omitempty"`
}

// Spec materializes the request into a validated chip configuration.
func (j *SpecJSON) Spec() (*Spec, error) {
	var s *Spec
	switch j.Preset {
	case "", "20x20", "sara20x20":
		s = SARA20x20()
	case "v1", "plasticine-v1":
		s = PlasticineV1()
	default:
		return nil, fmt.Errorf("arch: unknown preset %q (want 20x20 or v1)", j.Preset)
	}
	if j.Scale > 1 {
		s = s.Scaled(j.Scale)
	}
	if j.ClockGHz > 0 {
		s.ClockGHz = j.ClockGHz
	}
	if j.DRAMChannels > 0 {
		s.DRAM.Channels = j.DRAMChannels
	}
	if j.NetHopLatencyCycles > 0 {
		s.NetHopLatencyCycles = j.NetHopLatencyCycles
	}
	if j.DefaultStreamHops > 0 {
		s.DefaultStreamHops = j.DefaultStreamHops
	}
	if j.NumPCU > 0 {
		s.NumPCU = j.NumPCU
	}
	if j.NumPMU > 0 {
		s.NumPMU = j.NumPMU
	}
	if j.NumAG > 0 {
		s.NumAG = j.NumAG
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
