package arch

import "fmt"

// SpecJSON is the wire form of a chip configuration: a named preset, an
// optional generation-scaling factor, and optional field overrides. It is
// what the sarad serving API accepts as the "arch" member of a request, and
// its zero value means "the paper's default 20×20 HBM2 chip".
//
// Overrides with a zero value keep the preset's setting, so a request only
// states what it changes.
type SpecJSON struct {
	// Preset selects the base configuration: "20x20" (default) or "v1".
	Preset string `json:"preset,omitempty"`
	// Scale applies Spec.Scaled with the given factor (≥ 2 to take effect),
	// emulating larger chip generations.
	Scale int `json:"scale,omitempty"`

	ClockGHz            float64 `json:"clock_ghz,omitempty"`
	DRAMChannels        int     `json:"dram_channels,omitempty"`
	NetHopLatencyCycles int     `json:"net_hop_latency_cycles,omitempty"`
	DefaultStreamHops   int     `json:"default_stream_hops,omitempty"`
	NumPCU              int     `json:"num_pcu,omitempty"`
	NumPMU              int     `json:"num_pmu,omitempty"`
	NumAG               int     `json:"num_ag,omitempty"`
	Rows                int     `json:"rows,omitempty"`
	Cols                int     `json:"cols,omitempty"`
	// StreamDepth overrides the per-input stream buffer depth (InBufDepth) of
	// every unit type at once — the knob the autotuner sweeps.
	StreamDepth int `json:"stream_depth,omitempty"`
}

// checkOverrides rejects negative (and other nonsensical) override values
// with descriptive errors. Zero means "keep the preset's setting", so only
// explicitly bad values fail; the tuner mutates these fields programmatically
// and a bad knob combo must fail loudly, not simulate garbage.
func (j *SpecJSON) checkOverrides() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"scale", j.Scale},
		{"dram_channels", j.DRAMChannels},
		{"net_hop_latency_cycles", j.NetHopLatencyCycles},
		{"default_stream_hops", j.DefaultStreamHops},
		{"num_pcu", j.NumPCU},
		{"num_pmu", j.NumPMU},
		{"num_ag", j.NumAG},
		{"rows", j.Rows},
		{"cols", j.Cols},
		{"stream_depth", j.StreamDepth},
	} {
		if f.v < 0 {
			return fmt.Errorf("arch: %s %d invalid: overrides must be positive (zero keeps the preset's value)", f.name, f.v)
		}
	}
	if j.ClockGHz < 0 {
		return fmt.Errorf("arch: clock_ghz %v invalid: overrides must be positive (zero keeps the preset's value)", j.ClockGHz)
	}
	return nil
}

// Spec materializes the request into a validated chip configuration.
func (j *SpecJSON) Spec() (*Spec, error) {
	if err := j.checkOverrides(); err != nil {
		return nil, err
	}
	var s *Spec
	switch j.Preset {
	case "", "20x20", "sara20x20":
		s = SARA20x20()
	case "v1", "plasticine-v1":
		s = PlasticineV1()
	default:
		return nil, fmt.Errorf("arch: unknown preset %q (want 20x20 or v1)", j.Preset)
	}
	if j.Scale > 1 {
		s = s.Scaled(j.Scale)
	}
	if j.ClockGHz > 0 {
		s.ClockGHz = j.ClockGHz
	}
	if j.DRAMChannels > 0 {
		s.DRAM.Channels = j.DRAMChannels
	}
	if j.NetHopLatencyCycles > 0 {
		s.NetHopLatencyCycles = j.NetHopLatencyCycles
	}
	if j.DefaultStreamHops > 0 {
		s.DefaultStreamHops = j.DefaultStreamHops
	}
	if j.NumPCU > 0 {
		s.NumPCU = j.NumPCU
	}
	if j.NumPMU > 0 {
		s.NumPMU = j.NumPMU
	}
	if j.NumAG > 0 {
		s.NumAG = j.NumAG
	}
	if j.Rows > 0 {
		s.Rows = j.Rows
	}
	if j.Cols > 0 {
		s.Cols = j.Cols
	}
	if j.StreamDepth > 0 {
		s.PCU.InBufDepth = j.StreamDepth
		s.PMU.InBufDepth = j.StreamDepth
		s.AG.InBufDepth = j.StreamDepth
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
