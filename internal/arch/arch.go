// Package arch describes the target Reconfigurable Dataflow Accelerator:
// Plasticine's physical-unit capabilities, chip layouts, and DRAM technology
// (paper §II, §IV-a).
//
// Two presets matter for the evaluation: SARA20x20 is the paper's 20×20
// configuration with 420 physical units and HBM2 at 1 TB/s (§IV-a), and
// PlasticineV1 is the original Plasticine paper's 16×8 configuration with
// DDR3 at 49 GB/s, used for the vanilla-compiler comparison (§IV-C).
package arch

import "fmt"

// PUType enumerates the physical-unit types of the RDA fabric.
type PUType int

const (
	// PCU is a pattern compute unit: a SIMD pipeline of functional-unit
	// stages driven by a chained counter.
	PCU PUType = iota
	// PMU is a pattern memory unit: a banked scratchpad with its own address
	// datapath.
	PMU
	// AG is a DRAM address generator / interface unit on the chip boundary.
	AG
)

// String returns the unit-type mnemonic.
func (t PUType) String() string {
	switch t {
	case PCU:
		return "PCU"
	case PMU:
		return "PMU"
	case AG:
		return "AG"
	default:
		return fmt.Sprintf("PU(%d)", int(t))
	}
}

// PUSpec describes the capabilities of one physical-unit type; these are the
// resource limits the partitioner (paper Table I) must respect.
type PUSpec struct {
	Type PUType
	// Lanes is the SIMD width of the datapath.
	Lanes int
	// Stages is the number of functional-unit pipeline stages; one vector op
	// occupies one stage, so Stages bounds the ops per unit.
	Stages int
	// MaxIn and MaxOut bound the vector-stream input/output arity of the
	// unit (c_I and c_O in paper Table III). Broadcast edges with a unique
	// source count once.
	MaxIn, MaxOut int
	// InBufDepth is the per-input stream buffer depth in elements (b_d in
	// paper Table III); paths whose delay mismatch exceeds it need retiming
	// buffers.
	InBufDepth int
	// ScratchElems is the scratchpad capacity in datapath elements (PMU
	// only).
	ScratchElems int64
	// MaxCounters bounds the chained-counter depth.
	MaxCounters int
}

// DRAMKind selects the off-chip memory technology.
type DRAMKind int

const (
	// HBM2 models the paper's 1 TB/s high-bandwidth memory (§IV-a).
	HBM2 DRAMKind = iota
	// DDR3 models the original Plasticine evaluation's 49 GB/s DDR3 (§IV-C).
	DDR3
)

// String returns the technology name.
func (k DRAMKind) String() string {
	if k == HBM2 {
		return "HBM2"
	}
	return "DDR3"
}

// DRAMSpec describes the off-chip memory system.
type DRAMSpec struct {
	Kind DRAMKind
	// Channels is the number of independent channels; each AG binds to one.
	Channels int
	// BytesPerCyclePerChannel is the peak streaming bandwidth per channel,
	// normalized to the accelerator clock.
	BytesPerCyclePerChannel float64
	// LatencyCycles is the unloaded request round-trip latency.
	LatencyCycles int
	// BurstBytes is the minimum transfer granule; smaller or misaligned
	// requests waste bandwidth.
	BurstBytes int
}

// TotalBytesPerCycle returns the aggregate peak bandwidth in bytes/cycle.
func (d DRAMSpec) TotalBytesPerCycle() float64 {
	return d.BytesPerCyclePerChannel * float64(d.Channels)
}

// TotalGBs returns the aggregate peak bandwidth in GB/s at the given clock.
func (d DRAMSpec) TotalGBs(clockGHz float64) float64 {
	return d.TotalBytesPerCycle() * clockGHz
}

// Spec is a full chip configuration.
type Spec struct {
	Name string
	// Rows and Cols define the switch grid the PUs hang off.
	Rows, Cols int
	// NumPCU, NumPMU, NumAG are the unit counts (NumPCU+NumPMU+NumAG is the
	// paper's "physical units" total).
	NumPCU, NumPMU, NumAG int

	PCU PUSpec
	PMU PUSpec
	AG  PUSpec

	DRAM DRAMSpec

	// ClockGHz is the fabric clock.
	ClockGHz float64
	// NetHopLatencyCycles is the per-switch-hop latency of the on-chip
	// network; control signals crossing the chip take tens of cycles
	// (paper §II-B).
	NetHopLatencyCycles int
	// DefaultStreamHops is the switch-hop distance the simulator charges a
	// stream when the compiled design carries no placement — either because
	// compilation skipped the placer (fast design-space sweeps) or because a
	// sim.Design was assembled without merge/placement results. Zero or
	// negative falls back to the simulator's built-in default, so
	// hand-constructed Specs keep their historical behaviour.
	DefaultStreamHops int
	// LinkLanes is the vector width of one network link.
	LinkLanes int
	// ReconfigMicros is the full-chip reconfiguration time (paper §II-A c).
	ReconfigMicros float64
	// AreaMM2 is the chip area, used for area-normalized comparisons
	// (paper Table VI).
	AreaMM2 float64
}

// TotalPUs returns the number of physical units on the chip.
func (s *Spec) TotalPUs() int { return s.NumPCU + s.NumPMU + s.NumAG }

// PUSpecFor returns the capability record for a unit type.
func (s *Spec) PUSpecFor(t PUType) PUSpec {
	switch t {
	case PCU:
		return s.PCU
	case PMU:
		return s.PMU
	default:
		return s.AG
	}
}

// Validate checks internal consistency of the spec. The autotuner mutates
// specs programmatically, so every knob it can reach must fail loudly with a
// descriptive error rather than simulate garbage.
func (s *Spec) Validate() error {
	switch {
	case s.Rows <= 0 || s.Cols <= 0:
		return fmt.Errorf("arch %s: grid %dx%d invalid: rows and cols must be positive", s.Name, s.Rows, s.Cols)
	case s.NumPCU <= 0:
		return fmt.Errorf("arch %s: num_pcu %d invalid: chip needs at least one PCU", s.Name, s.NumPCU)
	case s.NumPMU <= 0:
		return fmt.Errorf("arch %s: num_pmu %d invalid: chip needs at least one PMU", s.Name, s.NumPMU)
	case s.NumAG <= 0:
		return fmt.Errorf("arch %s: num_ag %d invalid: chip needs at least one DRAM address generator", s.Name, s.NumAG)
	case s.PCU.Lanes <= 0 || s.PCU.Stages <= 0:
		return fmt.Errorf("arch %s: PCU lanes %d / stages %d invalid: both must be positive", s.Name, s.PCU.Lanes, s.PCU.Stages)
	case s.PCU.InBufDepth <= 0 || s.PMU.InBufDepth <= 0 || s.AG.InBufDepth <= 0:
		return fmt.Errorf("arch %s: stream buffer depth invalid (PCU %d, PMU %d, AG %d): all must be positive",
			s.Name, s.PCU.InBufDepth, s.PMU.InBufDepth, s.AG.InBufDepth)
	case s.PMU.ScratchElems <= 0:
		return fmt.Errorf("arch %s: PMU scratch capacity %d invalid: must be positive", s.Name, s.PMU.ScratchElems)
	case s.DRAM.Channels <= 0:
		return fmt.Errorf("arch %s: dram_channels %d invalid: must be positive", s.Name, s.DRAM.Channels)
	case s.DRAM.BytesPerCyclePerChannel <= 0:
		return fmt.Errorf("arch %s: DRAM bandwidth %v bytes/cycle/channel invalid: must be positive", s.Name, s.DRAM.BytesPerCyclePerChannel)
	case s.ClockGHz <= 0:
		return fmt.Errorf("arch %s: clock %v GHz invalid: must be positive", s.Name, s.ClockGHz)
	}
	return nil
}

// SARA20x20 returns the paper's evaluation target: a 20×20 Plasticine layout
// with 420 physical units and 1 TB/s HBM2 (§IV-a). With a 1 GHz clock,
// 1 TB/s equals 1000 bytes/cycle, spread over 16 channels.
func SARA20x20() *Spec {
	s := &Spec{
		Name:   "plasticine-20x20-hbm2",
		Rows:   20,
		Cols:   20,
		NumPCU: 200,
		NumPMU: 200,
		NumAG:  20,
		PCU: PUSpec{
			Type: PCU, Lanes: 16, Stages: 6,
			MaxIn: 4, MaxOut: 4, InBufDepth: 16, MaxCounters: 8,
		},
		PMU: PUSpec{
			Type: PMU, Lanes: 16, Stages: 4,
			MaxIn: 4, MaxOut: 4, InBufDepth: 16, MaxCounters: 8,
			ScratchElems: 64 * 1024, // 256 KB of 32-bit words
		},
		AG: PUSpec{
			Type: AG, Lanes: 16, Stages: 2,
			MaxIn: 2, MaxOut: 2, InBufDepth: 32, MaxCounters: 8,
		},
		DRAM: DRAMSpec{
			Kind:                    HBM2,
			Channels:                16,
			BytesPerCyclePerChannel: 62.5, // 16 ch × 62.5 B/cy = 1000 B/cy = 1 TB/s @ 1 GHz
			LatencyCycles:           120,
			BurstBytes:              64,
		},
		ClockGHz:            1.0,
		NetHopLatencyCycles: 2,
		DefaultStreamHops:   4,
		LinkLanes:           16,
		ReconfigMicros:      20,
		AreaMM2:             98, // ≈12% of a 815 mm² V100 (paper abstract)
	}
	return s
}

// PlasticineV1 returns the original Plasticine paper's configuration: a 16×8
// layout (64 PCUs + 64 PMUs), four DDR3 channels totalling 49 GB/s. Used for
// the vanilla-compiler comparison (paper §IV-C, Table V).
func PlasticineV1() *Spec {
	s := SARA20x20()
	s.Name = "plasticine-v1-ddr3"
	s.Rows, s.Cols = 16, 8
	s.NumPCU, s.NumPMU, s.NumAG = 64, 64, 12
	s.DRAM = DRAMSpec{
		Kind:                    DDR3,
		Channels:                4,
		BytesPerCyclePerChannel: 12.25, // 4 ch × 12.25 B/cy = 49 GB/s @ 1 GHz
		LatencyCycles:           160,
		BurstBytes:              64,
	}
	s.AreaMM2 = 55
	return s
}

// Scaled returns a copy of s with the PU counts and DRAM channels scaled by
// factor (≥1), emulating larger chip generations for scalability studies.
func (s *Spec) Scaled(factor int) *Spec {
	if factor < 1 {
		factor = 1
	}
	c := *s
	c.Name = fmt.Sprintf("%s-x%d", s.Name, factor)
	c.NumPCU *= factor
	c.NumPMU *= factor
	c.NumAG *= factor
	c.Rows *= factor
	c.DRAM.Channels *= factor
	c.AreaMM2 *= float64(factor)
	return &c
}
