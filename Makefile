# Tier-1 gate: `make ci` must pass before merging. Pure Go, no dependencies.

GO ?= go

.PHONY: ci fmt vet build test race bench benchsmoke serve

ci: fmt vet build race benchsmoke

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/sarabench -o BENCH_sim.json
	$(GO) test -bench=. -benchmem

# One iteration of the engine comparison: catches bit-rot in the benchmark
# harness without paying for a full timing run.
benchsmoke:
	$(GO) test -run '^$$' -bench BenchmarkCycleEngine -benchtime 1x .

# Run the compile-and-simulate daemon locally.
serve:
	$(GO) run ./cmd/sarad -addr :8080
