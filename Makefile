# Tier-1 gate: `make ci` must pass before merging. Pure Go, no dependencies.

GO ?= go

.PHONY: ci fmt vet build test race bench benchsmoke profilesmoke servesmoke tunesmoke serve

ci: fmt vet build race benchsmoke profilesmoke servesmoke tunesmoke

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 20m ./...

bench:
	$(GO) run ./cmd/sarabench -o BENCH_sim.json -compile-o BENCH_compile.json \
		-serve-o BENCH_serve.json -tune-o BENCH_tune.json
	$(GO) test -bench=. -benchmem

# One iteration of the engine comparison (event, dense, and parallel) plus a
# tiny compile-benchmark subset — including one incremental design-store
# replay row — and one explicit parallel-engine row: catches bit-rot in all
# harnesses without paying for a full timing run. The smoke compile report
# goes to a scratch path — only `make bench` refreshes the committed BENCH
# files. (The parallel engine's -race equivalence suite and the incremental
# cross-mode equivalence suite run under the `race` target, which ci already
# includes.)
benchsmoke:
	$(GO) test -run '^$$' -bench BenchmarkCycleEngine -benchtime 1x .
	$(GO) run ./cmd/sarabench -mode compile -smoke -compile-reps 1 \
		-compile-o $${TMPDIR:-/tmp}/BENCH_compile_smoke.json
	$(GO) run ./cmd/sarasim -workload rf -par 16 -scale 64 -engine parallel >/dev/null

# Cluster serving smoke: boots a tiny in-process 3-node sarad cluster under
# the race detector and replays a short cut of every request mix (hot/cold
# cache, mixed engines, profile toggle, incremental recompiles) through the
# consistent-hash proxy path. Any failed request fails the target. The
# cluster fault-injection and cross-node single-flight suites run under the
# `race` target, which ci already includes.
servesmoke:
	$(GO) run -race ./cmd/sarabench -mode serve -smoke \
		-serve-o $${TMPDIR:-/tmp}/BENCH_serve_smoke.json

# End-to-end profiler smoke: one profiled run producing both artifacts —
# the stall-attribution report and a Chrome trace-event export.
profilesmoke:
	$(GO) run ./cmd/sarasim -workload mlp -par 4 -scale 16 \
		-profile $${TMPDIR:-/tmp}/sara_profile_smoke.json -profile-report >/dev/null

# Autotuner smoke: one tiny deterministic search (12-point ms space) under
# the race detector, exercising the full explore → prune → validate loop,
# the design store, and the export path. The determinism, brute-force
# equivalence, and analytic-soundness suites run under the `race` target,
# which ci already includes.
tunesmoke:
	$(GO) run -race ./cmd/sarabench -mode tune -smoke \
		-tune-o $${TMPDIR:-/tmp}/BENCH_tune_smoke.json

# Run the compile-and-simulate daemon locally.
serve:
	$(GO) run ./cmd/sarad -addr :8080
