// Package sara is a from-scratch Go reproduction of SARA, the compiler that
// scales single-threaded imperative programs onto large Reconfigurable
// Dataflow Accelerators (Zhang et al., "SARA: Scaling a Reconfigurable
// Dataflow Accelerator", ISCA 2021).
//
// Programs are written against the spatial package's nested-loop frontend;
// Compile lowers them through the paper's full flow — Compiler-Managed
// Memory Consistency analysis, imperative-to-dataflow lowering, memory
// partitioning, compute partitioning (traversal- or MIP-solver-based),
// optimization passes, global merging, and placement — onto a Plasticine
// chip description from the plasticine package. The compiled design executes
// on either a cycle-level dataflow simulator or a validated analytic
// steady-state model.
//
//	prog := buildWithSpatial()
//	design, err := sara.Compile(prog, sara.WithChip(plasticine.SARA20x20()))
//	report, err := design.Simulate(sara.EngineCycle)
//	fmt.Println(report.Cycles, report.Resources.Total)
package sara

import (
	"fmt"
	"time"

	"sara/internal/consistency"
	"sara/internal/core"
	"sara/internal/interp"
	"sara/internal/membank"
	"sara/internal/merge"
	"sara/internal/opt"
	"sara/internal/partition"
	"sara/internal/rda"
	"sara/internal/sim"
	"sara/internal/store"
	"sara/plasticine"
	"sara/spatial"
)

// Option configures compilation.
type Option func(*core.Config)

// WithChip targets a specific chip configuration (default: the paper's
// 20×20 HBM2 Plasticine).
func WithChip(spec *plasticine.Spec) Option {
	return func(c *core.Config) { c.Spec = spec }
}

// WithoutOptimizations disables the §III-C optimization suite (msr, rtelm,
// retime, retime-m, xbar-elm).
func WithoutOptimizations() Option {
	return func(c *core.Config) { c.Opt = opt.None() }
}

// WithOptimizationToggles sets individual optimization switches.
func WithOptimizationToggles(msr, rtelm, retime, retimeMem, xbarElm bool) Option {
	return func(c *core.Config) {
		c.Opt = opt.Options{MSR: msr, RtElm: rtelm, Retime: retime, RetimeMem: retimeMem, XbarElm: xbarElm}
	}
}

// WithSolverPartitioning uses the mixed-integer-programming partitioner and
// merger with the given relative optimality gap (the paper's methodology
// uses 0.15) instead of the traversal heuristics.
func WithSolverPartitioning(gap float64, maxNodes int) Option {
	return func(c *core.Config) {
		c.Partition.Algo = partition.AlgoSolver
		c.Partition.Gap = gap
		c.Partition.MaxNodes = maxNodes
		c.Merge.Algo = partition.AlgoSolver
		c.Merge.Gap = gap
		c.Merge.MaxNodes = maxNodes
	}
}

// WithTraversalOrder forces one traversal-based partitioning order.
func WithTraversalOrder(algo partition.Algorithm) Option {
	return func(c *core.Config) {
		c.Partition.Algo = algo
		c.Merge.Algo = algo
	}
}

// WithoutBanking disables the memory partitioner (the vanilla-compiler
// restriction of §IV-C).
func WithoutBanking() Option {
	return func(c *core.Config) { c.Membank.DisableBanking = true }
}

// WithoutCreditRelaxation pins every CMMC credit to 1, disabling
// multibuffered pipelining across accessors.
func WithoutCreditRelaxation() Option {
	return func(c *core.Config) { c.Consistency.DisableCreditRelaxation = true }
}

// WithoutMerging keeps every virtual unit on its own physical unit.
func WithoutMerging() Option {
	return func(c *core.Config) { c.Merge = merge.Options{DisableMerging: true} }
}

// WithoutPlacement skips placement; simulation then charges a fixed stream
// distance. Useful for fast design-space sweeps.
func WithoutPlacement() Option {
	return func(c *core.Config) { c.SkipPlace = true }
}

// DesignStore is a persistent, content-addressed cache of per-stage compiler
// results. Compiling through one (WithDesignStore) switches Compile to the
// incremental driver: each pipeline stage's input is content-addressed and a
// recompile re-runs only the stages whose inputs actually changed — the
// output is bit-identical to a cold compile. With a directory, the store
// survives restarts; with an empty dir it memoizes within the process only.
type DesignStore struct {
	s *store.Store
}

// OpenDesignStore opens (creating if needed) a design store rooted at dir.
// An empty dir yields a memory-only store. A directory written by a
// different on-disk format version refuses to open.
func OpenDesignStore(dir string) (*DesignStore, error) {
	s, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	return &DesignStore{s: s}, nil
}

// StoreStats is a point-in-time snapshot of design-store counters: per-stage
// cache hits/misses/bytes, solver-instance memo traffic, and disk usage.
type StoreStats = store.Stats

// Stats returns the store's counters.
func (ds *DesignStore) Stats() StoreStats { return ds.s.Stats() }

// WithDesignStore compiles incrementally through ds. Sequential recompiles
// that change one knob (a parallelization factor, an arch parameter, an
// optimization flag) reuse every stage whose input is unchanged.
func WithDesignStore(ds *DesignStore) Option {
	return func(c *core.Config) { c.Memo = ds.s }
}

// Design is a compiled program ready for simulation.
type Design struct {
	c *core.Compiled
}

// Compile runs the full SARA flow on a spatial program.
func Compile(prog *spatial.Program, options ...Option) (*Design, error) {
	cfg := core.DefaultConfig()
	for _, o := range options {
		o(&cfg)
	}
	c, err := core.Compile(prog, cfg)
	if err != nil {
		return nil, err
	}
	return &Design{c: c}, nil
}

// Engine selects the execution engine.
type Engine int

const (
	// EngineCycle is the cycle-level dataflow simulator: exact, linear in
	// simulated cycles.
	EngineCycle Engine = iota
	// EngineAnalytic is the steady-state bottleneck model, validated against
	// EngineCycle and suitable for paper-scale sweeps.
	EngineAnalytic
	// EngineDense is the dense reference implementation of the cycle-level
	// simulator: same results as EngineCycle, cost linear in cycles. Use it
	// to cross-check the default event-driven engine.
	EngineDense
)

// Resources summarizes physical-unit usage.
type Resources = core.Resources

// Report is a simulation outcome.
type Report struct {
	// Cycles is the end-to-end runtime in accelerator cycles.
	Cycles int64
	// Seconds is Cycles at the chip clock.
	Seconds float64
	// Engine names the engine used.
	Engine string
	// Bottleneck names the throughput-limiting unit (analytic engine).
	Bottleneck string
	// ComputeBusy is the aggregate busy fraction of compute units.
	ComputeBusy float64
	// Resources is the compiled design's footprint.
	Resources Resources
	// CompileTime is the wall-clock compilation time.
	CompileTime time.Duration
}

// Simulate executes the design.
func (d *Design) Simulate(e Engine) (*Report, error) {
	var r *sim.Result
	var err error
	switch e {
	case EngineCycle:
		r, err = sim.Cycle(d.c.Design(), 0)
	case EngineDense:
		r, err = sim.CycleEngine(d.c.Design(), 0, sim.EngineDense)
	case EngineAnalytic:
		r, err = sim.Analytic(d.c.Design())
	default:
		return nil, fmt.Errorf("sara: unknown engine %d", e)
	}
	if err != nil {
		return nil, err
	}
	return &Report{
		Cycles:      r.Cycles,
		Seconds:     r.Seconds(d.c.Spec),
		Engine:      r.Engine,
		Bottleneck:  r.BottleneckVU,
		ComputeBusy: r.ComputeBusy,
		Resources:   d.c.Resources(),
		CompileTime: d.c.CompileTime(),
	}, nil
}

// Resources reports the compiled footprint without simulating.
func (d *Design) Resources() Resources { return d.c.Resources() }

// ConsistencySummary describes the CMMC plan: synchronization streams before
// and after the control-reduction analysis (paper §III-A3).
func (d *Design) ConsistencySummary() (raw, reduced int) {
	return d.c.Plan.RawTokenCount(), d.c.Plan.TokenCount()
}

// Describe renders the CMMC plan for inspection.
func (d *Design) Describe() string { return d.c.Plan.Describe() }

// PhaseTimes exposes per-compiler-phase wall-clock durations.
func (d *Design) PhaseTimes() map[string]time.Duration { return d.c.PhaseTimes }

// StageHits reports, for an incremental compile (WithDesignStore), which
// pipeline stages were restored from the design store (true) rather than
// recomputed (false). Nil for cold compiles.
func (d *Design) StageHits() map[string]bool { return d.c.StageHits }

// re-export for facade users that never touch internal packages directly.
var _ = consistency.Options{}
var _ = membank.Options{}

// SegmentedDesign is an application too large for one configuration,
// compiled as a sequence of reconfiguration segments (paper §IV-a: a runtime
// executes oversized CFGs in time by reconfiguring the RDA; on-chip state
// crossing a boundary is spilled to DRAM and refilled).
type SegmentedDesign struct {
	plan *rda.Plan
	spec *plasticine.Spec
}

// CompileSegmented splits prog into the fewest segments that each fit the
// chip and compiles every segment. A program that fits compiles into a
// single segment with no spill traffic.
func CompileSegmented(prog *spatial.Program, options ...Option) (*SegmentedDesign, error) {
	cfg := core.DefaultConfig()
	for _, o := range options {
		o(&cfg)
	}
	plan, err := rda.Split(prog, cfg)
	if err != nil {
		return nil, err
	}
	return &SegmentedDesign{plan: plan, spec: cfg.Spec}, nil
}

// Segments returns the number of reconfiguration units.
func (s *SegmentedDesign) Segments() int { return len(s.plan.Segments) }

// SpilledMems returns how many scratchpads cross segment boundaries.
func (s *SegmentedDesign) SpilledMems() int { return s.plan.SpilledMems }

// SegmentedReport is the runtime execution summary of a segmented design.
type SegmentedReport struct {
	TotalCycles    int64
	ComputeCycles  int64
	ReconfigCycles int64
	Segments       int
	Seconds        float64
}

// Run executes the segments in time, charging the chip's reconfiguration
// latency between them.
func (s *SegmentedDesign) Run() (*SegmentedReport, error) {
	rep, err := rda.Run(s.plan, s.spec)
	if err != nil {
		return nil, err
	}
	return &SegmentedReport{
		TotalCycles:    rep.TotalCycles,
		ComputeCycles:  rep.ComputeCycles,
		ReconfigCycles: rep.ReconfigCycles,
		Segments:       rep.Segments,
		Seconds:        float64(rep.TotalCycles) / (s.spec.ClockGHz * 1e9),
	}, nil
}

// Interpreter is a sequential reference interpreter over a spatial program:
// it executes the program in strict program order with real values — the
// semantics CMMC guarantees the spatially pipelined accelerator preserves
// (paper §III-A1). Use it to unit-test what a program computes before
// worrying about how fast it runs:
//
//	it := sara.NewInterpreter(prog)
//	it.SetMem("x", inputs)
//	it.Run()
//	out, _ := it.Mem("y")
type Interpreter = interp.Exec

// NewInterpreter returns an interpreter with zeroed memories.
func NewInterpreter(prog *spatial.Program) *Interpreter {
	return interp.NewExec(prog)
}
